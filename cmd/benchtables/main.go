// Command benchtables regenerates every experiment table recorded in
// EXPERIMENTS.md (E1–E14). Each table corresponds to one claim of the
// paper's evaluation (its complexity theorems); see DESIGN.md for the
// experiment index.
//
// Usage:
//
//	benchtables [-only E9]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynctrl/internal/experiments"
	"dynctrl/internal/stats"
)

func main() {
	only := flag.String("only", "", "run only the experiment whose table title contains this string (e.g. E9)")
	flag.Parse()
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(only string) error {
	var tables []*stats.Table
	if only == "" {
		tables = experiments.All()
	} else {
		for _, tb := range experiments.All() {
			if strings.Contains(tb.Title, only) {
				tables = append(tables, tb)
			}
		}
		if len(tables) == 0 {
			return fmt.Errorf("no experiment matches %q", only)
		}
	}
	for _, tb := range tables {
		fmt.Println(tb)
	}
	return nil
}
