module dynctrl

go 1.24
