module dynctrl

go 1.23
